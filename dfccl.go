// Package dfccl is a Go reproduction of DFCCL ("Comprehensive Deadlock
// Prevention for GPU Collective Communication", EuroSys 2025): a GPU
// collective communication library that prevents deadlocks by
// preempting collectives inside an on-GPU daemon kernel, while keeping
// NCCL-class performance through adaptive decentralized gang-scheduling.
//
// The hardware layer is a deterministic discrete-event simulation of a
// GPU cluster (CUDA-like devices, SHM/RDMA fabric); see DESIGN.md for
// the substitution argument and the v2 API overview. The public API is
// built around typed collective handles and awaitable futures:
//
//	lib := dfccl.New(dfccl.Server3090(8))
//	lib.Go("rank0", func(p *dfccl.Process) {
//	    ctx := lib.Init(p, 0)                                  // dfcclInit
//	    coll, _ := ctx.Open(                                   // register once...
//	        dfccl.AllReduce(n, dfccl.Float32, dfccl.Sum, 0, 1, 2, 3),
//	        dfccl.WithPriority(1))
//	    fut, _ := coll.Launch(p, send, recv)                   // ...invoke repeatedly
//	    _ = fut.Wait(p)                                        // completion + core-exec time
//	    _ = coll.Close(p)                                      // unregister; communicator
//	    ctx.Destroy(p)                                         // returns to the pool
//	})
//	lib.Run()
//
// Invocation is asynchronous; completion is delivered through futures
// (Launch) or callbacks (LaunchCB). Batch submits several collectives
// and returns a joined future. Ranks may invoke collectives in any
// order — circular collective dependency that would deadlock NCCL is
// resolved by preemption.
//
// The paper-literal API of Listing 1 (RegisterAllReduce / RunAllReduce
// / Run by integer collective ID) remains available as thin deprecated
// shims over the handle layer.
package dfccl

import (
	"dfccl/internal/core"
	"dfccl/internal/fabric"
	"dfccl/internal/mem"
	"dfccl/internal/metrics"
	"dfccl/internal/prim"
	"dfccl/internal/sim"
	"dfccl/internal/topo"
	"dfccl/internal/trace"
	"dfccl/internal/tune"
)

// Re-exported simulation types. Host code runs as simulated processes
// on a virtual clock.
type (
	// Process is a simulated host thread.
	Process = sim.Process
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// Cluster describes the simulated GPU cluster.
	Cluster = topo.Cluster
	// Buffer is a typed device/host memory region.
	Buffer = mem.Buffer
	// DataType is a collective element type.
	DataType = mem.DataType
	// ReduceOp is a reduction operator.
	ReduceOp = mem.ReduceOp
	// Config carries DFCCL tunables (CQ variant, stickiness policy...).
	Config = core.Config
	// RankContext is the per-GPU context (dfcclInit's rankCtx).
	RankContext = core.RankContext
	// TraceRecorder records daemon scheduling events when assigned to
	// Config.Tracer; it exports Chrome trace JSON (WriteChromeTrace).
	TraceRecorder = trace.Recorder

	// Spec describes one collective operation; build one with the
	// AllReduce/AllGather/ReduceScatter/Broadcast/Reduce/AllToAll/
	// AllToAllv constructors and pass it to (*RankContext).Open.
	Spec = prim.Spec
	// Collective is a typed handle to one registered collective on one
	// rank: Launch/LaunchCB to invoke, Stats to observe, Close to
	// unregister and recycle its communicator.
	Collective = core.Collective
	// Future is the awaitable result of Launch or Batch: Wait blocks
	// the simulated process until completion and CoreExecTime reports
	// the run's on-GPU execution time.
	Future = core.Future
	// CollectiveStats are per-handle scheduling statistics.
	CollectiveStats = core.CollectiveStats
	// OpenOption configures Open (WithPriority, WithCollID, WithGrid,
	// WithCounts, WithAlgorithm).
	OpenOption = core.OpenOption
	// BatchItem is one launch in a Batch.
	BatchItem = core.BatchItem
	// Algorithm selects the primitive-sequence algorithm of a
	// collective: AlgoRing (default), AlgoHierarchical for the
	// topology-aware kinds, or AlgoAuto to defer the choice to the
	// tuning table at Open time.
	Algorithm = prim.Algorithm
	// TuningTable is the algorithm auto-tuning table AlgoAuto resolves
	// against; assign one to Config.Tuning to override the committed
	// default.
	TuningTable = tune.Table
	// TransportBytes is a per-transport (local / SHM / RDMA) split of
	// the wire traffic a collective's executor sent, reported through
	// CollectiveStats.
	TransportBytes = prim.TransportBytes
	// RankLostError is the typed failure delivered through futures and
	// callbacks when a participating rank is killed mid-run; it carries
	// the collective ID and the departed ranks, and matches
	// errors.Is(err, ErrRankLost). Recover with (*Collective).Reform.
	RankLostError = core.RankLostError

	// FabricNetwork prices the deployment's transfers: assign one to
	// Config.Network. UnsharedFabric gives the legacy isolated-path
	// model (the default); SharedFabric makes concurrent transfers
	// contend max-min fairly for per-tier link capacity.
	FabricNetwork = fabric.Network
	// FabricConfig shapes a shared fabric: machines per leaf switch and
	// the per-tier oversubscription factors.
	FabricConfig = fabric.Config
	// LinkStat is one fabric link's cumulative counters (bytes carried,
	// busy and saturated time), reported through CollectiveStats.Fabric.
	LinkStat = fabric.LinkStat
	// TierUtil aggregates LinkStats per fabric tier; build it with
	// FabricTierSummary.
	TierUtil = fabric.TierUtil

	// MetricsRegistry is the process-wide metrics registry
	// (counters/gauges/histograms) returned by (*Library).Metrics;
	// DumpCanonical serializes it as deterministic JSON.
	MetricsRegistry = metrics.Registry
	// MetricsSeries is an append-only sample series with nearest-rank
	// percentiles, for workload-level latency recording.
	MetricsSeries = metrics.Series
)

// ErrRankLost is the sentinel matched by errors.Is when a launch fails
// because a rank left the group mid-run (KillRank: spot preemption,
// hardware fault). Close the dead handle and Reform over the
// survivors to retry.
var ErrRankLost = core.ErrRankLost

// Fabric constructors and helpers for Config.Network.
var (
	// UnsharedFabric is the legacy pricing: every transfer runs at its
	// path's full bandwidth, blind to concurrent flows. Bit-identical in
	// timing and data to the pre-fabric behavior.
	UnsharedFabric = fabric.Unshared
	// SharedFabric derives the cluster's physical link graph (SHM
	// domains, NICs, leaf and spine switches) and makes concurrent
	// transfers share link capacity max-min fairly.
	SharedFabric = fabric.Shared
	// DefaultFabricConfig is a full-bisection fabric (no
	// oversubscription), two machines per leaf.
	DefaultFabricConfig = fabric.DefaultConfig
	// OversubFabricConfig sets the leaf and spine oversubscription
	// factors to f (1 = full bisection; >1 tapers core capacity).
	OversubFabricConfig = fabric.OversubConfig
	// FabricTierSummary folds per-link stats into one row per tier over
	// a time horizon.
	FabricTierSummary = fabric.TierSummary
)

// Functional options for (*RankContext).Open.
var (
	// WithPriority sets the daemon scheduling priority (higher first).
	WithPriority = core.WithPriority
	// WithCollID pins the explicit collective ID, as dfcclRegister* does.
	WithCollID = core.WithCollID
	// WithGrid sets the thread blocks the collective's kernel needs.
	WithGrid = core.WithGrid
	// WithCounts supplies the AllToAllv per-peer count matrix:
	// counts[i][j] elements flow from devSet position i to position j.
	WithCounts = core.WithCounts
	// WithAlgorithm selects the collective's primitive-sequence
	// algorithm (AlgoRing, AlgoHierarchical for the kinds with a
	// two-tier schedule, or AlgoAuto to let the tuning table decide).
	// All ranks must open the same algorithm; unknown algorithms are
	// rejected at Open.
	WithAlgorithm = core.WithAlgorithm
	// WithJob tags the collective with its owning tenant job ID for
	// per-job isolation in the communicator pool and per-tenant
	// attribution of recorded spans, sends, and fabric flows (0 — the
	// default — means untagged single-job use).
	WithJob = core.WithJob
)

// Collective algorithms selectable with WithAlgorithm.
const (
	// AlgoRing is the flat topology-blind ring (the default).
	AlgoRing = prim.AlgoRing
	// AlgoHierarchical tiers the collective by node topology: direct
	// SHM exchange intra-node, a leader ring of aggregated blocks over
	// RDMA inter-node — strictly fewer inter-node bytes than the flat
	// ring on multi-node clusters. Available for the all-to-all
	// variants, all-reduce, all-gather, and reduce-scatter.
	AlgoHierarchical = prim.AlgoHierarchical
	// AlgoAuto defers the ring-vs-hierarchical choice to the tuning
	// table (Config.Tuning, defaulting to the committed artifact),
	// keyed by kind, payload size, and the node shape the collective's
	// rank set spans. Kinds without a hierarchical schedule always
	// resolve to the ring.
	AlgoAuto = prim.AlgoAuto
)

// AllReduce builds the spec of an all-reduce over devSet: every rank
// contributes count elements and receives the elementwise reduction.
func AllReduce(count int, t DataType, op ReduceOp, devSet ...int) Spec {
	return Spec{Kind: prim.AllReduce, Count: count, Type: t, Op: op, Ranks: devSet}
}

// AllGather builds the spec of an all-gather over devSet: every rank
// contributes count elements and receives count×N.
func AllGather(count int, t DataType, devSet ...int) Spec {
	return Spec{Kind: prim.AllGather, Count: count, Type: t, Ranks: devSet}
}

// ReduceScatter builds the spec of a reduce-scatter over devSet: every
// rank contributes count elements and receives its count/N share of
// the reduction.
func ReduceScatter(count int, t DataType, op ReduceOp, devSet ...int) Spec {
	return Spec{Kind: prim.ReduceScatter, Count: count, Type: t, Op: op, Ranks: devSet}
}

// Broadcast builds the spec of a broadcast over devSet; root indexes
// devSet, not global ranks.
func Broadcast(count int, t DataType, root int, devSet ...int) Spec {
	return Spec{Kind: prim.Broadcast, Count: count, Type: t, Root: root, Ranks: devSet}
}

// Reduce builds the spec of a reduce over devSet; root indexes devSet.
func Reduce(count int, t DataType, op ReduceOp, root int, devSet ...int) Spec {
	return Spec{Kind: prim.Reduce, Count: count, Type: t, Op: op, Root: root, Ranks: devSet}
}

// AllToAll builds the spec of an all-to-all over devSet: every rank
// sends a distinct count-element block to every peer and receives one
// from each, the dispatch/combine exchange of MoE expert parallelism.
// Send and recv buffers both hold count×N elements; block j of the
// send buffer goes to devSet[j], block i of the recv buffer came from
// devSet[i].
func AllToAll(count int, t DataType, devSet ...int) Spec {
	return Spec{Kind: prim.AllToAll, Count: count, Type: t, Ranks: devSet}
}

// AllToAllv builds the spec of a variable-count all-to-all over devSet:
// block sizes come from a per-peer count matrix instead of a uniform
// count, so skewed exchanges (MoE dispatch under a hot expert) move
// exactly the routed elements with no capacity padding. Supply the
// matrix with the WithCounts option at Open (or by assigning
// Spec.Counts directly): counts[i][j] elements flow from devSet
// position i to position j. Position i's send buffer is the row-i
// concatenation, its recv buffer the column-i concatenation.
func AllToAllv(t DataType, devSet ...int) Spec {
	return Spec{Kind: prim.AllToAllv, Type: t, Ranks: devSet}
}

// Batch submits several collective runs at once and returns a joined
// future that resolves when all of them complete. Items may target
// different collectives (typically on the same rank); all items are
// validated before anything is submitted.
func Batch(p *Process, items ...BatchItem) (*Future, error) {
	return core.Batch(p, items...)
}

// Re-exported constants.
const (
	Float32 = mem.Float32
	Float64 = mem.Float64
	Int32   = mem.Int32
	Int64   = mem.Int64

	Sum  = mem.Sum
	Prod = mem.Prod
	Max  = mem.Max
	Min  = mem.Min

	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second

	// OrderFIFO / OrderPriority select the daemon's ordering policy.
	OrderFIFO     = core.OrderFIFO
	OrderPriority = core.OrderPriority
)

// Cluster constructors matching the paper's testbeds (Table 2).
var (
	// Server3090 builds a single 8-GPU-class RTX 3090 server.
	Server3090 = topo.Server3090
	// Server3080Ti builds a single RTX 3080Ti server.
	Server3080Ti = topo.Server3080Ti
	// MultiNode3090 builds m 8-GPU 3090 servers connected by RDMA.
	MultiNode3090 = topo.MultiNode3090
)

// DefaultConfig returns the paper's evaluated configuration: optimized
// CQ, adaptive stickiness, FIFO ordering.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewBuffer allocates a simulated device buffer of count elements.
func NewBuffer(t DataType, count int) *Buffer {
	return mem.NewBuffer(mem.DeviceSpace, t, count)
}

// Library is a DFCCL deployment over a simulated cluster plus the
// simulation engine that drives it.
type Library struct {
	sys    *core.System
	engine *sim.Engine
}

// New creates a library over the cluster with the default config.
func New(c *Cluster) *Library { return NewWithConfig(c, DefaultConfig()) }

// NewWithConfig creates a library with an explicit configuration.
func NewWithConfig(c *Cluster, cfg Config) *Library {
	e := sim.NewEngine()
	return &Library{sys: core.NewSystem(e, c, cfg), engine: e}
}

// Go spawns a simulated host process (e.g. one per rank).
func (l *Library) Go(name string, fn func(p *Process)) { l.engine.Spawn(name, fn) }

// Init creates (or returns) the rank context for a GPU — dfcclInit.
func (l *Library) Init(p *Process, rank int) *RankContext { return l.sys.Init(p, rank) }

// Run drives the simulation until all host processes finish. It
// returns sim.ErrDeadlock if the simulated system globally deadlocks —
// which, with DFCCL collectives, it does not.
func (l *Library) Run() error { return l.engine.Run() }

// SetTimeLimit bounds the virtual run time (useful to convert a
// would-be hang into an error in experiments).
func (l *Library) SetTimeLimit(d Duration) { l.engine.MaxTime = sim.Time(d) }

// Now returns the current virtual time in nanoseconds.
func (l *Library) Now() Duration { return Duration(l.engine.Now()) }

// System exposes the underlying deployment for benchmarks and tools
// that need device handles or daemon statistics.
func (l *Library) System() *core.System { return l.sys }

// Metrics snapshots the deployment's process-wide metrics registry:
// launch/completion and daemon lifecycle counters, elastic-membership
// and tuning-pick counts, per-transport wire bytes, and per-tier
// fabric utilization. Serialize it with DumpCanonical for a
// deterministic artifact.
func (l *Library) Metrics() *MetricsRegistry { return l.sys.Metrics() }

// KillRank removes a rank mid-run: every group it participates in
// aborts (in-flight launches resolve with a RankLostError on all
// member ranks, at the executor's preempt/resume checkpoints), and new
// opens over rank sets containing it are refused. Survivors re-form
// with (*Collective).Reform. Killing an already-lost rank is a no-op.
func (l *Library) KillRank(rank int) { l.sys.KillRank(rank) }

// ReviveRank returns a killed rank to the deployment; the next Init
// builds it a fresh context. It fails while the dead rank's abort
// drain is still in flight.
func (l *Library) ReviveRank(rank int) error { return l.sys.ReviveRank(rank) }

// RankLost reports whether a rank is currently killed.
func (l *Library) RankLost(rank int) bool { return l.sys.RankLost(rank) }
