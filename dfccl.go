// Package dfccl is a Go reproduction of DFCCL ("Comprehensive Deadlock
// Prevention for GPU Collective Communication", EuroSys 2025): a GPU
// collective communication library that prevents deadlocks by
// preempting collectives inside an on-GPU daemon kernel, while keeping
// NCCL-class performance through adaptive decentralized gang-scheduling.
//
// The hardware layer is a deterministic discrete-event simulation of a
// GPU cluster (CUDA-like devices, SHM/RDMA fabric); see DESIGN.md for
// the substitution argument. The public API mirrors the paper's
// Listing 1:
//
//	lib := dfccl.New(dfccl.Server3090(8))
//	lib.Go("rank0", func(p *dfccl.Process) {
//	    ctx := lib.Init(p, 0)                                // dfcclInit
//	    ctx.RegisterAllReduce(1, n, dfccl.Float32, dfccl.Sum,
//	        []int{0, 1, ...}, 0)                             // dfcclRegisterAllReduce
//	    ctx.RunAllReduce(p, 1, send, recv, func() { ... })   // dfcclRunAllReduce
//	    ctx.Destroy(p)                                       // dfcclDestroy
//	})
//	lib.Run()
//
// Collectives are registered once and invoked repeatedly; invocation is
// asynchronous and completion is delivered through callbacks. Ranks may
// invoke collectives in any order — circular collective dependency that
// would deadlock NCCL is resolved by preemption.
package dfccl

import (
	"dfccl/internal/core"
	"dfccl/internal/mem"
	"dfccl/internal/sim"
	"dfccl/internal/topo"
	"dfccl/internal/trace"
)

// Re-exported simulation types. Host code runs as simulated processes
// on a virtual clock.
type (
	// Process is a simulated host thread.
	Process = sim.Process
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// Cluster describes the simulated GPU cluster.
	Cluster = topo.Cluster
	// Buffer is a typed device/host memory region.
	Buffer = mem.Buffer
	// DataType is a collective element type.
	DataType = mem.DataType
	// ReduceOp is a reduction operator.
	ReduceOp = mem.ReduceOp
	// Config carries DFCCL tunables (CQ variant, stickiness policy...).
	Config = core.Config
	// RankContext is the per-GPU context (dfcclInit's rankCtx).
	RankContext = core.RankContext
	// TraceRecorder records daemon scheduling events when assigned to
	// Config.Tracer; it exports Chrome trace JSON (WriteChromeTrace).
	TraceRecorder = trace.Recorder
)

// Re-exported constants.
const (
	Float32 = mem.Float32
	Float64 = mem.Float64
	Int32   = mem.Int32
	Int64   = mem.Int64

	Sum  = mem.Sum
	Prod = mem.Prod
	Max  = mem.Max
	Min  = mem.Min

	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second

	// OrderFIFO / OrderPriority select the daemon's ordering policy.
	OrderFIFO     = core.OrderFIFO
	OrderPriority = core.OrderPriority
)

// Cluster constructors matching the paper's testbeds (Table 2).
var (
	// Server3090 builds a single 8-GPU-class RTX 3090 server.
	Server3090 = topo.Server3090
	// Server3080Ti builds a single RTX 3080Ti server.
	Server3080Ti = topo.Server3080Ti
	// MultiNode3090 builds m 8-GPU 3090 servers connected by RDMA.
	MultiNode3090 = topo.MultiNode3090
)

// DefaultConfig returns the paper's evaluated configuration: optimized
// CQ, adaptive stickiness, FIFO ordering.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewBuffer allocates a simulated device buffer of count elements.
func NewBuffer(t DataType, count int) *Buffer {
	return mem.NewBuffer(mem.DeviceSpace, t, count)
}

// Library is a DFCCL deployment over a simulated cluster plus the
// simulation engine that drives it.
type Library struct {
	sys    *core.System
	engine *sim.Engine
}

// New creates a library over the cluster with the default config.
func New(c *Cluster) *Library { return NewWithConfig(c, DefaultConfig()) }

// NewWithConfig creates a library with an explicit configuration.
func NewWithConfig(c *Cluster, cfg Config) *Library {
	e := sim.NewEngine()
	return &Library{sys: core.NewSystem(e, c, cfg), engine: e}
}

// Go spawns a simulated host process (e.g. one per rank).
func (l *Library) Go(name string, fn func(p *Process)) { l.engine.Spawn(name, fn) }

// Init creates (or returns) the rank context for a GPU — dfcclInit.
func (l *Library) Init(p *Process, rank int) *RankContext { return l.sys.Init(p, rank) }

// Run drives the simulation until all host processes finish. It
// returns sim.ErrDeadlock if the simulated system globally deadlocks —
// which, with DFCCL collectives, it does not.
func (l *Library) Run() error { return l.engine.Run() }

// SetTimeLimit bounds the virtual run time (useful to convert a
// would-be hang into an error in experiments).
func (l *Library) SetTimeLimit(d Duration) { l.engine.MaxTime = sim.Time(d) }

// Now returns the current virtual time in nanoseconds.
func (l *Library) Now() Duration { return Duration(l.engine.Now()) }

// System exposes the underlying deployment for benchmarks and tools
// that need device handles or daemon statistics.
func (l *Library) System() *core.System { return l.sys }
