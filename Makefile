GO ?= go

.PHONY: all fmt vet build test test-race ci smoke doccheck bench tune chaos trace cluster

all: ci

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race runs the whole suite under the race detector. The
# simulation engine is cooperatively scheduled, so this mostly guards
# the host-side harness code (benches, workloads) against accidental
# real concurrency; ~1 min.
test-race:
	$(GO) test -race ./...

ci: fmt vet build test

# doccheck fails if any exported identifier in the root package,
# internal/prim, internal/orch, internal/fabric, internal/tune,
# internal/trace, or internal/metrics lacks a doc comment (go/ast-based,
# no external linters; see cmd/doccheck).
doccheck:
	$(GO) run ./cmd/doccheck

# bench regenerates the machine-readable perf-trajectory snapshot
# (BENCH_pr10.json): the all-to-all size × algorithm × shape × fabric
# matrix, the fault-injection scenarios with their chaos-overhead
# column, the full-collective matrix (all-reduce / all-gather /
# reduce-scatter × ring / hierarchical / auto), the tracing-overhead
# cells pinning the flight recorder's zero observer effect, and the
# multi-job contention column (per-policy cluster cells plus the
# launch-path allocs/op cell). Deterministic — regenerating on an
# unchanged tree is a no-op diff, so CI can assert the committed
# snapshot is current. (BENCH_pr9.json is the previous PR's snapshot,
# kept as history.)
bench:
	$(GO) run ./cmd/trainbench -fig collbench -out BENCH_pr10.json

# tune regenerates the committed auto-tuning table
# (internal/tune/default_table.json) from the crossover sweep; like
# bench, a re-run on an unchanged tree must be a no-op diff.
tune:
	$(GO) run ./cmd/trainbench -fig tune

# chaos runs the fault-injection gate: seeded kill/revive schedules
# against live elastic DP/MoE/ZeRO workloads; exits non-zero unless
# every fault surfaces as a typed error or a clean re-formation with
# training bit-identical to the fault-free reference.
chaos:
	$(GO) run ./cmd/trainbench -fig chaos

# trace runs the flight-recorder gate and writes trace.json (open in
# chrome://tracing or https://ui.perfetto.dev) and metrics.json; exits
# non-zero unless trace-derived byte totals reconcile exactly against
# the executors' accounting, span counts match executed primitives, the
# chaos kill left abort+reform marks, and regeneration is
# byte-identical.
trace:
	$(GO) run ./cmd/trainbench -fig trace

# cluster runs the multi-tenant cluster gate: a bursty trace of
# heterogeneous jobs contending for one fabric under FIFO / priority /
# bin-packing admission; exits non-zero unless every job is
# bit-identical to its solo run, the priority policy beats FIFO on
# high-priority p99 sojourn, a mid-run kill requeues cleanly, and zero
# goroutines leak after drain. See internal/cluster.
cluster:
	$(GO) run ./cmd/trainbench -fig cluster

# smoke is the all-in-one gate: formatting, static checks (go vet), the
# race-detector test pass, the godoc floor, and a minimal-iteration pass
# through every cmd/* entry point. The cmd/ pass takes a few seconds;
# test-race dominates (~1 min). See TESTING.md.
smoke: fmt vet build test-race doccheck
	$(GO) run ./cmd/overhead > /dev/null
	$(GO) run ./cmd/dlprevent -iters 2 > /dev/null
	$(GO) run ./cmd/dlprevent -lib nccl > /dev/null
	$(GO) run ./cmd/collbench -fig 9 -iters 1 > /dev/null
	$(GO) run ./cmd/deadlocksim -rounds 100 -filter "sq-free(1,8)" > /dev/null
	$(GO) run ./cmd/trainbench -fig 11 -iters 1 > /dev/null
	$(GO) run ./cmd/trainbench -fig moe -iters 2 -trials 1 > /dev/null
	$(GO) run ./cmd/trainbench -fig zero -iters 2 -trials 1 > /dev/null
	$(GO) run ./cmd/trainbench -fig a2a > /dev/null
	$(GO) run ./cmd/trainbench -fig chaos > /dev/null
	$(GO) run ./cmd/trainbench -fig ar > /dev/null
	$(GO) run ./cmd/trainbench -fig cluster > /dev/null
	$(GO) run ./cmd/trainbench -fig tune
	$(GO) run ./cmd/trainbench -fig trace > /dev/null
	$(GO) run ./cmd/trainbench -fig collbench -out BENCH_pr10.json
	@git diff --exit-code -- internal/tune/default_table.json BENCH_pr10.json \
		|| { echo "smoke: regenerated artifacts differ from the committed ones"; exit 1; }
	@echo "smoke: all entry points OK"
