GO ?= go

.PHONY: all fmt vet build test ci

all: ci

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

ci: fmt vet build test
