package dfccl_test

import (
	"math/rand"
	"testing"

	"dfccl"
)

func TestFacadeQuickstart(t *testing.T) {
	const n, count = 4, 256
	lib := dfccl.New(dfccl.Server3090(n))
	lib.SetTimeLimit(10 * dfccl.Second)
	ranks := []int{0, 1, 2, 3}
	results := make([]*dfccl.Buffer, n)
	for rank := 0; rank < n; rank++ {
		rank := rank
		lib.Go("rank", func(p *dfccl.Process) {
			ctx := lib.Init(p, rank)
			if err := ctx.RegisterAllReduce(1, count, dfccl.Float64, dfccl.Sum, ranks, 0); err != nil {
				t.Errorf("register: %v", err)
				return
			}
			send := dfccl.NewBuffer(dfccl.Float64, count)
			recv := dfccl.NewBuffer(dfccl.Float64, count)
			send.Fill(float64(rank + 1))
			results[rank] = recv
			if err := ctx.Run(p, 1, send, recv, nil); err != nil {
				t.Errorf("run: %v", err)
				return
			}
			ctx.WaitAll(p)
			ctx.Destroy(p)
		})
	}
	if err := lib.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank, r := range results {
		if got := r.Float64At(0); got != 10 {
			t.Fatalf("rank %d = %v, want 10", rank, got)
		}
	}
}

func TestFacadeDisorderedOrdersComplete(t *testing.T) {
	// The signature capability: random per-rank invocation order.
	const n, nColl = 4, 6
	lib := dfccl.New(dfccl.Server3090(n))
	lib.SetTimeLimit(30 * dfccl.Second)
	ranks := []int{0, 1, 2, 3}
	rng := rand.New(rand.NewSource(9))
	orders := make([][]int, n)
	for i := range orders {
		orders[i] = rng.Perm(nColl)
	}
	completed := make([]int, n)
	for rank := 0; rank < n; rank++ {
		rank := rank
		lib.Go("rank", func(p *dfccl.Process) {
			ctx := lib.Init(p, rank)
			for c := 0; c < nColl; c++ {
				if err := ctx.RegisterAllReduce(c, 128, dfccl.Float32, dfccl.Sum, ranks, 0); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
			for _, c := range orders[rank] {
				send := dfccl.NewBuffer(dfccl.Float32, 128)
				recv := dfccl.NewBuffer(dfccl.Float32, 128)
				if err := ctx.Run(p, c, send, recv, func(error) { completed[rank]++ }); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
			ctx.WaitAll(p)
			ctx.Destroy(p)
		})
	}
	if err := lib.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for rank, c := range completed {
		if c != nColl {
			t.Fatalf("rank %d completed %d, want %d", rank, c, nColl)
		}
	}
}

func TestFacadeTimeAdvances(t *testing.T) {
	lib := dfccl.New(dfccl.Server3090(2))
	lib.Go("sleeper", func(p *dfccl.Process) { p.Sleep(3 * dfccl.Millisecond) })
	if err := lib.Run(); err != nil {
		t.Fatal(err)
	}
	if lib.Now() != 3*dfccl.Millisecond {
		t.Fatalf("Now = %v", lib.Now())
	}
}
